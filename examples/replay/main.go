// Replay: the record→replay→diff walkthrough of internal/workload and
// internal/replay. A 64-rank Sweep3D run with a skewed workload — a
// lognormal per-tile compute distribution plus OS-noise events — is
// recorded as a versioned op trace, read back, re-executed, and diffed
// against the original result bit for bit. The same flow is available
// from the command line:
//
//	sweepsim -workload '{"dist":"lognormal","sigma":0.4,"seed":7}' -record-trace trace.jsonl
//	replay -in trace.jsonl -out replayed.jsonl
//	cmp trace.jsonl replayed.jsonl
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/apps"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/simmpi"
	"repro/internal/simnet"
	"repro/internal/workload"
)

func main() {
	// 1. Describe a skewed workload: per-tile compute drawn from a
	//    lognormal with σ = 0.4 (mean exactly 1, so the total work is
	//    unchanged in expectation), plus an average of one 25µs OS-noise
	//    event every two tiles. Every sample is a pure hash of
	//    (seed, rank, sweep, tile) — no RNG stream, so the workload is
	//    bit-identical for any worker or shard count.
	wl := workload.Spec{
		Dist: workload.DistLognormal, Sigma: 0.4, Seed: 7,
		Noise: &workload.NoiseSpec{Rate: 0.5, AmpUS: 25},
	}
	g := grid.Cube(32)
	bm := apps.Sweep3D(g, 2).WithIterations(2).WithWorkload(wl)
	dec := grid.MustDecompose(g, 8, 8)
	mspec := config.MachineSpec{Preset: "xt4", CoresPerNode: 2}
	mach, err := mspec.Machine()
	check(err)

	// The analytic model keeps the paper's uniform-compute assumption;
	// the gap it opens against the perturbed simulation is the measured
	// quantity.
	rep, err := core.New(bm.App, mach).Evaluate(dec)
	check(err)

	// 2. Record: run the simulation with the flight recorder's Ops
	//    stream enabled and write the versioned trace — a JSONL file
	//    with a schema_version'd header plus one op-stream line per rank.
	sched, err := bm.Schedule(dec, 2)
	check(err)
	tp, err := simnet.NewMachineTopology(mach, dec)
	check(err)
	rec := &obs.Recorder{Ops: true}
	sim, err := simmpi.NewWithOptions(tp, simmpi.Options{Obs: rec})
	check(err)
	for r, p := range sched.Programs() {
		sim.SetProgram(r, p)
	}
	res, err := sim.Run()
	check(err)
	fmt.Printf("recorded:  %s / %s\n", bm.App.Name, wl.String())
	fmt.Printf("simulated: %.1fµs (model, uniform-compute: %.1fµs → %+.1f%% error under skew)\n",
		res.Time, rep.Total, (rep.Total-res.Time)/res.Time*100)

	hdr := replay.Header{
		App: bm.App.Name, Workload: wl.String(),
		Machine: mspec,
		Grid:    config.GridSpec{Nx: g.Nx, Ny: g.Ny, Nz: g.Nz},
		DecN:    dec.N, DecM: dec.M,
	}.WithResult(res)
	f, err := os.Create("workload_trace.jsonl")
	check(err)
	check(replay.Write(f, hdr, rec))
	check(f.Close())
	fmt.Println("wrote workload_trace.jsonl")

	// 3. Replay: read the trace back and re-execute the exact op
	//    streams — no schedule generation, no workload sampling; the
	//    durations come from the file.
	f, err = os.Open("workload_trace.jsonl")
	check(err)
	hdr2, ops, err := replay.Read(f)
	check(err)
	check(f.Close())
	res2, err := replay.Replay(hdr2, ops, replay.Options{})
	check(err)

	// 4. Diff: the replay must reproduce the recorded result bit for
	//    bit — same virtual time down to the last float64 bit, same
	//    event and message counts.
	if diffs := replay.Diff(hdr2, res2); diffs != nil {
		fmt.Println("replay diverged:\n  " + strings.Join(diffs, "\n  "))
		os.Exit(1)
	}
	fmt.Printf("replayed:  %.1fµs — bit-identical to the recording\n", res2.Time)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "replay-example:", err)
		os.Exit(1)
	}
}
