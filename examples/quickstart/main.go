// Quickstart: evaluate a wavefront application with the plug-and-play
// model in a few lines — predict Sweep3D's runtime on a dual-core XT4-like
// machine, validate the prediction against the discrete-event simulator,
// and calibrate the per-cell work from the real transport kernel.
package main

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/simnet"
	"repro/internal/sweep"
)

func main() {
	// 1. Pick a benchmark and a machine. apps.Sweep3D fills in the paper's
	// Table 3 parameters: 8 sweeps (nfull=2, ndiag=2), 6 angles, two
	// all-reduces between iterations.
	g := grid.Cube(64)
	bm := apps.Sweep3D(g, 2).WithIterations(4)
	mach := machine.XT4()

	// 2. Predict execution time on 64 processors.
	model := core.New(bm.App, mach)
	rep, err := model.EvaluateP(64)
	if err != nil {
		panic(err)
	}
	fmt.Printf("model: %s on %d cores of %s\n", bm.App.Name, rep.P, mach.Name)
	fmt.Printf("  per iteration: %.2f ms (fill %.2f ms, stacks %.2f ms, all-reduce %.3f ms)\n",
		rep.TimePerIteration/1e3, rep.FillTimePerIter/1e3,
		float64(bm.App.NSweeps)*rep.TStack/1e3, rep.TNonWavefront/1e3)
	fmt.Printf("  total (%d iterations): %.2f ms, %.1f%% communication\n",
		bm.App.Iterations, rep.Total/1e3, rep.CommPerIter/rep.TimePerIteration*100)

	// 3. Validate against the discrete-event simulator ("measurement").
	dec, err := grid.SquareDecomposition(g, 64)
	if err != nil {
		panic(err)
	}
	sched, err := bm.Schedule(dec, bm.App.Iterations)
	if err != nil {
		panic(err)
	}
	topo := simnet.NewTopology(mach.Params, dec.P(), simnet.GridPlacement(dec, mach))
	sim := simmpi.New(topo)
	for r, prog := range sched.Programs() {
		sim.SetProgram(r, prog)
	}
	res, err := sim.Run()
	if err != nil {
		panic(err)
	}
	fmt.Printf("simulator: %.2f ms → model error %+.2f%%\n",
		res.Time/1e3, (rep.Total-res.Time)/res.Time*100)

	// 4. Calibrate Wg from the real transport kernel on this host and
	// re-evaluate: the model is "plug-and-play" — only inputs change.
	wg := sweep.CalibrateTransportWg(apps.Sweep3DAngles, 2)
	calibrated := core.New(bm.WithWg(wg, 0).App, mach)
	rep2, err := calibrated.EvaluateP(64)
	if err != nil {
		panic(err)
	}
	fmt.Printf("with host-calibrated Wg=%.4f µs/cell: total %.2f ms\n", wg, rep2.Total/1e3)
}
