// Procurement: use the model to answer platform sizing and partitioning
// questions for a production particle transport workload (paper Section
// 5.2, Figures 6–9): how execution time scales with system size, where
// diminishing returns set in, and how many simulations to run in parallel.
package main

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/metrics"
)

func main() {
	bm := apps.Sweep3D(grid.NewGrid(1000, 1000, 1000), 2)
	mach := machine.XT4()
	const (
		steps  = 1e4
		groups = 30
	)

	// Runtime of one full simulation (10⁴ steps × 30 energy groups) on p
	// cores, in µs.
	runtime := func(p int) (float64, error) {
		rep, err := core.New(bm.App, mach).EvaluateP(p)
		if err != nil {
			return 0, err
		}
		return rep.Total * groups * steps, nil
	}

	fmt.Println("scaling of one Sweep3D 10⁹ production simulation:")
	ps := []int{4096, 8192, 16384, 32768, 65536, 131072}
	times := make([]float64, len(ps))
	for i, p := range ps {
		us, err := runtime(p)
		if err != nil {
			panic(err)
		}
		times[i] = us
		fmt.Printf("  P=%-7d %8.1f days\n", p, us/1e6/86400)
	}
	knee, err := metrics.DiminishingReturns(ps, times, 0.25)
	if err != nil {
		panic(err)
	}
	fmt.Printf("doubling beyond P=%d improves runtime by <25%%\n\n", knee)

	fmt.Println("partitioning 128K cores among parallel simulations:")
	points, err := metrics.Partitions(131072, []int{1, 2, 4, 8, 16}, runtime)
	if err != nil {
		panic(err)
	}
	for _, pt := range points {
		fmt.Printf("  %2d jobs × %-7d cores: R=%7.1f days, %6.1f steps/month/problem\n",
			pt.Jobs, pt.Partition, pt.R/1e6/86400, metrics.TimeStepsPerMonth(pt.R/steps))
	}
	a, err := metrics.Optimal(points, metrics.MinRoverX)
	if err != nil {
		panic(err)
	}
	b, err := metrics.Optimal(points, metrics.MinR2overX)
	if err != nil {
		panic(err)
	}
	fmt.Printf("optimal: min R/X → %d jobs; min R²/X → %d jobs\n", a.Jobs, b.Jobs)
}
