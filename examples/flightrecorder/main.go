// Flightrecorder: walk through the observability layer of internal/obs —
// attach one recorder to a 64-rank Sweep3D simulation on a torus-connected
// dual-core XT4, then render the recording three ways: a Chrome trace-event
// timeline for ui.perfetto.dev, a sampled CSV time series, and duration
// histograms whose percentiles expose the tail contention that mean wait
// columns hide. Everything printed and written here is deterministic: the
// same bytes for any shard count (window tracks aside) on every machine.
package main

import (
	"fmt"
	"os"

	"repro/internal/apps"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/simmpi"
	"repro/internal/simnet"
	"repro/internal/topo"
)

func main() {
	// One Sweep3D iteration: 32³ cells over an 8×8 rank grid (64 ranks on
	// 32 dual-core nodes), inter-node traffic routed over a 2D torus.
	g := grid.Cube(32)
	bm := apps.Sweep3D(g, 2)
	dec := grid.MustDecompose(g, 8, 8)
	mach := machine.XT4()
	sched, err := bm.Schedule(dec, 1)
	check(err)
	tp := simnet.NewTopology(mach.Params, dec.P(), simnet.GridPlacement(dec, mach))
	check(tp.AttachInterconnect(topo.Spec{Kind: topo.Torus2D}))

	// The recorder's feature flags choose what is collected; all of them
	// off (the default) collects nothing, and a nil recorder costs the
	// simulation nothing at all. Unlike a span Tracer, an obs.Recorder does
	// not force the simulation serial — a sharded run records the same
	// bytes, so Shards and Obs compose freely in one Options value.
	rec := &obs.Recorder{Spans: true, Messages: true, Links: true, Windows: true, Hist: true}
	sim, err := simmpi.NewWithOptions(tp, simmpi.Options{
		Shards: 4, // conservative-parallel, bit-identical to serial
		Obs:    rec,
	})
	check(err)
	for r, p := range sched.Programs() {
		sim.SetProgram(r, p)
	}
	res, err := sim.Run()
	check(err)
	fmt.Printf("simulated %d ranks: %.1fµs makespan, %d events, %d messages\n\n",
		dec.P(), res.Time, res.Events, res.Sends)

	// 1. Timeline: one track per rank, per active link and per shard.
	//    Load the file in https://ui.perfetto.dev (or chrome://tracing);
	//    clicking a send span shows its peer and byte count, a link span
	//    its queueing delay, a shard window its event count and heap depth.
	ic := tp.Interconnect()
	f, err := os.Create("flight_trace.json")
	check(err)
	check(obs.WriteTimeline(f, rec, obs.TimelineOptions{LinkName: ic.LinkName}))
	check(f.Close())
	fmt.Println("wrote flight_trace.json — open in https://ui.perfetto.dev")

	// 2. Time series: the simulation's state sampled every 100µs of
	//    simulated time — how many ranks compute vs. block, messages in
	//    flight, link busy time per interval. Plot ranks_compute against
	//    t_us to watch the wavefront pipeline fill and drain.
	f, err = os.Create("flight_samples.csv")
	check(err)
	check(obs.WriteSamples(f, rec, 100))
	check(f.Close())
	fmt.Println("wrote flight_samples.csv — e.g. ranks_compute over t_us")

	// 3. Histograms: log2-bucketed durations, percentiles computed from
	//    integer bucket counts so they are exact and merge-order free.
	//    recv_wait p99 ≫ p50 is the wavefront signature: corner ranks
	//    start immediately, far ranks wait for the whole sweep to arrive.
	fmt.Printf("\nduration histograms (µs):\n")
	res.Hists.Write(os.Stdout)
	h := &res.Hists.RecvWait
	fmt.Printf("\nreceive wait: p50 %.3gµs vs p99 %.3gµs — the pipeline-fill tail\n",
		h.Quantile(0.5), h.Quantile(0.99))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "flightrecorder:", err)
		os.Exit(1)
	}
}
