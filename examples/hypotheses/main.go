// Hypotheses: walk through the controlled-experiment harness end to end.
// A custom experiment is declared inline — baseline and treatment
// campaigns differing in exactly one dimension (the rank count), a metric,
// a predicted direction and a minimum effect — then executed across three
// workload seeds. The harness machine-checks the single-delta property by
// diffing the arms' content-key components, runs every arm twice (at
// different worker and shard counts) to re-verify determinism, evaluates
// the standing invariants, and renders a confirm/refute verdict. The same
// machinery powers `cmd/hypoth` and the committed reports under
// hypotheses/.
package main

import (
	"fmt"
	"os"

	"repro/internal/campaign"
	"repro/internal/config"
	"repro/internal/hypothesis"
	"repro/internal/workload"
)

// arm builds one experiment arm: a 16³ LU campaign at the given rank
// count, with a mildly imbalanced workload for the seeds to act on.
func arm(name string, ranks int) campaign.Spec {
	g := config.GridSpec{Nx: 16, Ny: 16, Nz: 16}
	return campaign.Spec{
		Name:       name,
		Iterations: 1,
		Apps: []campaign.AppDim{{
			Preset: "lu", Grid: &g,
			Workload: &config.WorkloadSpec{Dist: workload.DistLognormal, Sigma: 0.1, Seed: 1},
		}},
		Machines: []campaign.MachineDim{{MachineSpec: config.MachineSpec{Preset: "xt4", CoresPerNode: 2}}},
		Ranks:    []int{ranks},
	}
}

func main() {
	exp := hypothesis.Experiment{
		ID:     "example-strong-scaling",
		Title:  "16 ranks beat 4 on a fixed 16³ grid",
		Family: "monotonicity",
		Hypothesis: "Quadrupling the rank count at a fixed problem size decreases simulated " +
			"runtime: per-rank compute shrinks 4×, and at this size communication cannot eat the gain.",
		Metric:    "sim_us",
		Direction: hypothesis.Decrease,
		MinEffect: 0.10,
		Seeds:     []uint64{42, 123, 456},
		Baseline:  arm("lu-p4", 4),
		Treatment: arm("lu-p16", 16),
	}

	// The single-delta check also runs inside Run; calling it directly
	// shows what the machine verifies: exactly one content-key component
	// differs between the paired runs of the two arms.
	delta, err := exp.CheckDelta(exp.Seeds[0], campaign.KeyMode{Canon: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("machine-checked delta: component %q\n", delta.Component)
	fmt.Printf("  baseline:  %s\n", delta.Baseline)
	fmt.Printf("  treatment: %s\n\n", delta.Treatment)

	rep, err := hypothesis.Run(exp, hypothesis.Config{Workers: 2})
	if err != nil {
		panic(err)
	}

	fmt.Printf("verdict: %s (median effect %+.1f%% across %d seeds)\n",
		rep.Verdict, rep.Effect.Median*100, rep.Effect.N)
	for _, s := range rep.PerSeed {
		fmt.Printf("  seed %3d: %8.1f µs → %8.1f µs  (%+.1f%%)\n",
			s.Seed, s.BaselineMean, s.TreatmentMean, s.Effect*100)
	}
	fmt.Println("\ninvariants (each arm executed twice, at different worker AND shard counts):")
	for _, inv := range rep.Invariants {
		fmt.Printf("  %-28s %s\n", inv.Name, inv.Status)
	}

	fmt.Println("\nfull report (the Markdown twin of hypotheses/<id>.md):")
	fmt.Println("---")
	if err := rep.WriteMarkdown(os.Stdout); err != nil {
		panic(err)
	}
}
