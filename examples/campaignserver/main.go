// Campaignserver: walk through the campaign serving layer end to end,
// in-process — no network needed (cmd/campaignd serves the same handler
// over a real socket). A server is started with a shared
// content-addressed result cache, a client submits the example sweep over
// HTTP twice, and the numbers show what the cache did: the first campaign
// simulates every run, the second simulates nothing, and both serve
// byte-identical JSONL — a cache hit is indistinguishable from a cold run
// in the output, because a run's content key covers everything that
// determines its bytes (and nothing that doesn't, like display labels).
//
// The same machinery backs multi-process sweeps on one machine or many:
// `campaign -range i/N -checkpoint DIR` executes a deterministic slice of
// the run list with per-range checkpoint files, a killed process resumes
// where it died, and `campaign -merge` reassembles output byte-identical
// to a single-process run.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/campaign"
)

func main() {
	// The server side: a validated base Config plus a shared store. Every
	// campaign submitted to this server draws on one cache, so clients
	// warm it for each other. cmd/campaignd wraps exactly this in
	// http.ListenAndServe; httptest keeps the example self-contained.
	srv, err := campaign.NewServer(campaign.Config{
		Workers: 4,
		Store:   campaign.NewMemoryStore(0),
	})
	check(err)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	fmt.Printf("campaignd-style server at %s\n\n", ts.URL)

	spec, _ := campaign.Builtin("example")
	body, err := json.Marshal(spec)
	check(err)

	var outputs [][]byte
	for round := 1; round <= 2; round++ {
		// POST the spec. The server expands it synchronously — a bad spec
		// is a 400 with the expansion error — and executes asynchronously.
		resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
		check(err)
		var sub struct {
			Schema     int    `json:"schema_version"`
			ID         string `json:"id"`
			Runs       int    `json:"runs"`
			StatusURL  string `json:"status_url"`
			ResultsURL string `json:"results_url"`
		}
		check(json.NewDecoder(resp.Body).Decode(&sub))
		resp.Body.Close()
		fmt.Printf("round %d: submitted %q → id %s, %d runs (schema v%d)\n",
			round, spec.Name, sub.ID, sub.Runs, sub.Schema)

		// Poll the status endpoint until the state leaves "running".
		var st struct {
			State string             `json:"state"`
			Done  int                `json:"done"`
			Total int                `json:"total"`
			Stats campaign.ExecStats `json:"stats"`
		}
		for {
			resp, err := http.Get(ts.URL + sub.StatusURL)
			check(err)
			check(json.NewDecoder(resp.Body).Decode(&st))
			resp.Body.Close()
			if st.State != "running" {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		fmt.Printf("round %d: %s — %d/%d runs: %d simulated, %d served from cache\n",
			round, st.State, st.Done, st.Total, st.Stats.Simulated, st.Stats.CacheHits)

		// Fetch the results: JSONL in index order, byte-identical to what
		// `campaign -builtin example -out ...` writes.
		resp, err = http.Get(ts.URL + sub.ResultsURL)
		check(err)
		rows, err := io.ReadAll(resp.Body)
		check(err)
		resp.Body.Close()
		outputs = append(outputs, rows)
	}

	if bytes.Equal(outputs[0], outputs[1]) {
		fmt.Println("\ncold and warm-cache campaigns served byte-identical JSONL")
	} else {
		fmt.Println("\nERROR: outputs differ")
		os.Exit(1)
	}
	cs := srv.Store().Stats()
	fmt.Printf("shared cache: %d entries, %d hits, %d misses\n", cs.Entries, cs.Hits, cs.Misses)
	first, _, _ := bytes.Cut(outputs[0], []byte("\n"))
	fmt.Printf("first row: %.120s...\n", first)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaignserver:", err)
		os.Exit(1)
	}
}
