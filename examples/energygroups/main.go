// Energygroups: the sweep-structure re-design of paper Section 5.5, three
// ways. (1) As real code: a multi-group transport solve with sequential
// and pipelined group schedules, verified to produce identical fluxes and
// timed on this host. (2) On the discrete-event simulator: the emergent
// execution times of both schedules. (3) With the plug-and-play model:
// the same comparison from just the Table 3 parameters — which is how the
// paper projects the benefit before anyone implements the re-design.
package main

import (
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/simnet"
	"repro/internal/sweep"
	"repro/internal/wavefront"
)

func main() {
	const groups = 4

	// --- 1. Real code on this host ---
	g := grid.NewGrid(96, 96, 64)
	dec := grid.MustDecompose(g, 4, 4)
	mp := sweep.NewMultiGroupProblem(g, 2, groups)
	octs := sweep.Octants(wavefront.Sweep3DCorners())

	seqSched := sweep.SequentialGroupSchedule(octs, groups)
	pipSched := sweep.PipelinedGroupSchedule(octs, groups)

	t0 := time.Now()
	seqFlux, err := mp.SolveSchedule(dec, 2, seqSched)
	check(err)
	seqWall := time.Since(t0)

	t0 = time.Now()
	pipFlux, err := mp.SolveSchedule(dec, 2, pipSched)
	check(err)
	pipWall := time.Since(t0)

	var maxDiff float64
	for gi := range seqFlux {
		for c := range seqFlux[gi] {
			d := seqFlux[gi][c] - pipFlux[gi][c]
			if d < 0 {
				d = -d
			}
			if d > maxDiff {
				maxDiff = d
			}
		}
	}
	fmt.Printf("real solve, %d groups on %d workers: sequential %v, pipelined %v (max flux diff %g)\n",
		groups, dec.P(), seqWall.Round(time.Millisecond), pipWall.Round(time.Millisecond), maxDiff)

	// --- 2. Discrete-event simulation of an MPI machine ---
	simGrid := grid.NewGrid(64, 64, 64)
	simDec := grid.MustDecompose(simGrid, 8, 8)
	mach := machine.XT4()
	simTime := func(corners []grid.Corner) float64 {
		bm := apps.Sweep3D(simGrid, 2)
		sched, err := bm.Schedule(simDec, 1)
		check(err)
		sched.Corners = corners
		topo := simnet.NewTopology(mach.Params, simDec.P(), simnet.GridPlacement(simDec, mach))
		sim := simmpi.New(topo)
		for r := 0; r < simDec.P(); r++ {
			sim.SetProgram(r, sched.Program(r))
		}
		res, err := sim.Run()
		check(err)
		return res.Time
	}
	seqSim := simTime(wavefront.SequentialGroupCorners(wavefront.Sweep3DCorners(), groups))
	pipSim := simTime(wavefront.PipelinedGroupCorners(wavefront.Sweep3DCorners(), groups))
	fmt.Printf("simulated on %s, P=%d: sequential %.1f ms, pipelined %.1f ms (%.1f%% saved)\n",
		mach.Params.Name, simDec.P(), seqSim/1e3, pipSim/1e3, (seqSim-pipSim)/seqSim*100)

	// --- 3. Plug-and-play model projection ---
	bm := apps.Sweep3D(simGrid, 2).WithIterations(1)
	seqApp := bm.App.FromCorners(wavefront.SequentialGroupCorners(wavefront.Sweep3DCorners(), groups))
	pipApp := bm.App.FromCorners(wavefront.PipelinedGroupCorners(wavefront.Sweep3DCorners(), groups))
	seqRep, err := core.New(seqApp, mach).Evaluate(simDec)
	check(err)
	pipRep, err := core.New(pipApp, mach).Evaluate(simDec)
	check(err)
	fmt.Printf("model projection:            sequential %.1f ms, pipelined %.1f ms (%.1f%% saved)\n",
		seqRep.Total/1e3, pipRep.Total/1e3, (seqRep.Total-pipRep.Total)/seqRep.Total*100)
	fmt.Printf("derived structures: sequential nsweeps=%d nfull=%d ndiag=%d; pipelined nsweeps=%d nfull=%d ndiag=%d\n",
		seqApp.NSweeps, seqApp.NFull, seqApp.NDiag,
		pipApp.NSweeps, pipApp.NFull, pipApp.NDiag)
	fmt.Println("(paper Section 5.5: pipelining the groups keeps nfull=2, ndiag=2 while nsweeps scales with groups)")
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
