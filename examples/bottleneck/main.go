// Bottleneck: break the predicted execution time into computation,
// communication and pipeline-fill components (paper Sections 5.4–5.5,
// Figures 11–12), and project the benefit of the pipelined energy-group
// sweep re-design before implementing it.
package main

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
)

func main() {
	mach := machine.XT4()

	fmt.Println("Chimaera 240³ cost breakdown per time step:")
	bm := apps.Chimaera(grid.Cube(240), 2)
	for _, p := range []int{1024, 4096, 16384, 32768} {
		rep, err := core.New(bm.App, mach).EvaluateP(p)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  P=%-6d total=%6.2fs  comp=%6.2fs  comm=%6.2fs (%4.1f%%)  fill=%5.2fs\n",
			p, rep.Total/1e6, rep.ComputePerIter*float64(bm.App.Iterations)/1e6,
			rep.CommPerIter*float64(bm.App.Iterations)/1e6,
			rep.CommPerIter/rep.TimePerIteration*100,
			rep.FillTimePerIter*float64(bm.App.Iterations)/1e6)
	}

	fmt.Println("\nsweep re-design: pipelined energy groups (Sweep3D, 4×4×1000 cells/processor, 30 groups):")
	const p = 16384
	n, m := 128, 128
	g := grid.NewGrid(4*n, 4*m, 1000)
	dec := grid.MustDecompose(g, n, m)
	seq := apps.Sweep3D(g, 2)
	pip := seq.App.WithSweepStructure(8*30, 2, 2) // 240 sweeps, nfull=2, ndiag=2

	seqRep, err := core.New(seq.App, mach).Evaluate(dec)
	if err != nil {
		panic(err)
	}
	pipRep, err := core.New(pip, mach).Evaluate(dec)
	if err != nil {
		panic(err)
	}
	seqTotal := seqRep.Total * 30 // 30 sequential group solves
	fmt.Printf("  sequential groups: %8.2f s/step (fill %.2f s, %.1f%%)\n",
		seqTotal/1e6, seqRep.FillTimePerIter*float64(seq.App.Iterations)*30/1e6,
		seqRep.FillTimePerIter*float64(seq.App.Iterations)*30/seqTotal*100)
	fmt.Printf("  pipelined groups:  %8.2f s/step (fill %.2f s)\n",
		pipRep.Total/1e6, pipRep.FillTimePerIter*float64(pip.Iterations)/1e6)
	fmt.Printf("  projected saving:  %8.2f s/step (%.1f%%) at P=%d\n",
		(seqTotal-pipRep.Total)/1e6, (seqTotal-pipRep.Total)/seqTotal*100, p)
	fmt.Println("  (assumes convergence needs no extra iterations — Section 5.5)")
}
