// Multicore: explore the platform design question of paper Section 5.3
// with the Table 6 model extensions — how many cores per node are worth
// building for wavefront workloads, and what a partitioned-bus node design
// recovers.
package main

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
)

func main() {
	bm := apps.Sweep3D(grid.NewGrid(1000, 1000, 1000), 2)
	const nodes = 32768
	const scale = 30 * 1e4 // energy groups × time steps

	fmt.Printf("Sweep3D 10⁹ on %d nodes, varying cores per node:\n", nodes)
	for _, cores := range []int{1, 2, 4, 8, 16} {
		mach, err := machine.XT4MultiCore(cores)
		if err != nil {
			panic(err)
		}
		rep, err := core.New(bm.App, mach).EvaluateP(nodes * cores)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %2d cores/node (%dx%d rectangle): %7.1f days  [comm %4.1f%%]\n",
			cores, mach.Cx, mach.Cy, rep.Total*scale/1e6/86400,
			rep.CommPerIter/rep.TimePerIteration*100)
	}

	fmt.Println("\n16-core node alternatives:")
	for _, groups := range []int{1, 2, 4} {
		mach, err := machine.XT4MultiCoreGrouped(16, groups)
		if err != nil {
			panic(err)
		}
		rep, err := core.New(bm.App, mach).EvaluateP(nodes * 16)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %d bus group(s) of %2d cores: %7.1f days\n",
			groups, 16/groups, rep.Total*scale/1e6/86400)
	}
	fmt.Println("\na separate bus+NIC per 4-core group makes a 16-core node match quad-core scaling (Section 5.3)")
}
