// Collectives: walk through the collective-algorithm machinery of
// internal/coll — simulate a convergence all-reduce with the ring and
// recursive-doubling algorithms across payload sizes, locate the size at
// which the ring's P-times-smaller chunks overtake recursive doubling's
// fewer rounds, and compare each algorithm's closed-form LogGP prediction
// with the discrete-event simulation it abstracts.
package main

import (
	"fmt"

	"repro/internal/coll"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/stats"
)

func main() {
	mach := machine.XT4()
	const ranks = 32

	// Ring pays 2(P−1) rounds of bytes/P chunks; recursive doubling pays
	// log2(P) rounds of the full payload. Latency dominates small payloads
	// (recursive doubling wins), bandwidth dominates large ones (ring wins).
	fmt.Printf("all-reduce over %d ranks on %s:\n", ranks, mach.Name)
	fmt.Printf("  %10s %12s %12s %10s\n", "bytes", "ring(µs)", "recdbl(µs)", "winner")
	var sizes []int
	for s := 8; s <= 1<<21; s *= 8 {
		sizes = append(sizes, s)
	}
	pts, err := coll.CrossoverScan(mach, ranks, sizes)
	if err != nil {
		panic(err)
	}
	for _, pt := range pts {
		winner := "recdouble"
		if pt.Ring <= pt.RecDouble {
			winner = "ring"
		}
		fmt.Printf("  %10d %12.4g %12.4g %10s\n", pt.Bytes, pt.Ring, pt.RecDouble, winner)
	}
	if cross := coll.Crossover(pts); cross >= 0 {
		fmt.Printf("  → switch from recursive doubling to ring at ~%d bytes\n\n", cross)
	} else {
		fmt.Printf("  → recursive doubling wins across the whole range\n\n")
	}

	// Every algorithm also has a closed-form LogGP price; the difference
	// against the simulation is the closed form's abstraction error.
	fmt.Println("closed-form LogGP vs simulation, 64 KB payloads:")
	for _, c := range []coll.Collective{
		{Kind: coll.Bcast, Alg: simmpi.AlgBinomial, Bytes: 65536},
		{Kind: coll.Allreduce, Alg: simmpi.AlgRing, Bytes: 65536},
		{Kind: coll.Allreduce, Alg: simmpi.AlgRecDouble, Bytes: 65536},
		{Kind: coll.Barrier},
	} {
		res, err := coll.Simulate(mach, ranks, c)
		if err != nil {
			panic(err)
		}
		model := c.Model(mach, ranks)
		fmt.Printf("  %-26s model %10.4g µs  sim %10.4g µs  err %+6.2f%%\n",
			c, model, res.Time, 100*stats.SignedRelErr(model, res.Time))
	}
	fmt.Println("\nenable a per-iteration convergence all-reduce in any app with" +
		"\nBenchmark.WithConvergence, a config {\"convergence\": {...}} block, or a" +
		"\ncampaign app dimension — see the \"collectives\" builtin campaign.")
}
