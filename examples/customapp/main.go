// Customapp: the plug-and-play use case the paper motivates — model a
// wavefront production code that is neither LU, Sweep3D nor Chimaera by
// supplying only the Table 3 inputs, then explore a design change. The
// imaginary code "Tsunami" performs four sweeps per iteration from
// alternating corners with a pre-computation step, 4 angles, and a single
// all-reduce between iterations.
package main

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/simmpi"
	"repro/internal/simnet"
	"repro/internal/wavefront"
)

func main() {
	g := grid.Cube(64)
	const angles = 4

	// Four sweeps: NW, then its opposite corner (full handoff), then NE
	// and its opposite — a structure none of the three benchmarks has.
	corners := []grid.Corner{grid.NW, grid.SE, grid.NE, grid.SW}

	bm := apps.Custom("Tsunami", g,
		angles*apps.GrindTime, // Wg: 4 angles
		0.05,                  // Wg,pre: small pre-computation per cell
		2,                     // Htile
		corners,
		func(dec grid.Decomposition, htile int) int { return 8 * htile * angles * dec.CellsPerRankY() },
		func(dec grid.Decomposition, htile int) int { return 8 * htile * angles * dec.CellsPerRankX() },
		core.AllReduceNonWavefront(1),
		5, // iterations
		func(dec grid.Decomposition) func(int) []simmpi.Op {
			return wavefront.AllReduceInter(1)
		})

	ns, nf, nd := wavefront.Classify(corners)
	fmt.Printf("Tsunami sweep structure: nsweeps=%d nfull=%d ndiag=%d (derived from corners)\n", ns, nf, nd)

	mach := machine.XT4()
	rep, err := core.New(bm.App, mach).EvaluateP(64)
	if err != nil {
		panic(err)
	}
	fmt.Printf("model: %.2f ms total on %d cores\n", rep.Total/1e3, rep.P)

	// The same parameter set drives the simulator — no model re-derivation.
	dec, err := grid.SquareDecomposition(g, 64)
	if err != nil {
		panic(err)
	}
	sched, err := bm.Schedule(dec, bm.App.Iterations)
	if err != nil {
		panic(err)
	}
	topo := simnet.NewTopology(mach.Params, dec.P(), simnet.GridPlacement(dec, mach))
	sim := simmpi.New(topo)
	for r, prog := range sched.Programs() {
		sim.SetProgram(r, prog)
	}
	res, err := sim.Run()
	if err != nil {
		panic(err)
	}
	fmt.Printf("simulator: %.2f ms → model error %+.2f%%\n",
		res.Time/1e3, (rep.Total-res.Time)/res.Time*100)

	// Design study: would reordering the sweeps so consecutive sweeps
	// share corners (pipelined handoffs) help?
	redesign := bm.App.FromCorners([]grid.Corner{grid.NW, grid.NW, grid.SE, grid.SE})
	rep2, err := core.New(redesign, mach).EvaluateP(64)
	if err != nil {
		panic(err)
	}
	fmt.Printf("re-designed sweep order: %.2f ms (%+.1f%% vs original)\n",
		rep2.Total/1e3, (rep2.Total-rep.Total)/rep.Total*100)
}
